"""Tests for operation counting, density metrics and node classification."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import (
    NodeType,
    OpCounts,
    classification_percentages,
    classify_nodes,
    op_counts_from_result,
)
from repro.scoreboard import run_scoreboard


class TestOpCounts:
    def test_paper_figure1_counts(self):
        # Fig. 1: rows 1011, 1111, 0011, 0010 -> 10 bit-sparsity ops vs 4 transitive ops.
        counts = op_counts_from_result(run_scoreboard([11, 15, 3, 2], width=4))
        assert counts.bit_sparsity_ops == 10
        assert counts.transitive_ops == 4
        assert counts.dense_ops == 16
        assert counts.speedup_over_dense() == pytest.approx(4.0)
        assert counts.speedup_over_bit_sparsity() == pytest.approx(2.5)

    def test_density_floor_for_full_8bit_population(self):
        counts = op_counts_from_result(run_scoreboard(list(range(256)), width=8))
        assert counts.density == pytest.approx((255 + 0) / (256 * 8), abs=0.01)

    def test_zero_rows_counted_as_sparsity(self):
        counts = op_counts_from_result(run_scoreboard([0, 0, 0, 1], width=4))
        assert counts.zero_rows == 3
        assert counts.zr_fraction == pytest.approx(0.75)
        assert counts.transitive_ops == 1

    def test_merge_adds_componentwise(self):
        a = op_counts_from_result(run_scoreboard([1, 2, 3], width=4))
        b = op_counts_from_result(run_scoreboard([4, 8, 12], width=4))
        merged = a.merge(b)
        assert merged.total_transrows == 6
        assert merged.transitive_ops == a.transitive_ops + b.transitive_ops
        with pytest.raises(ValueError):
            a.merge(op_counts_from_result(run_scoreboard([1], width=8)))

    def test_component_densities_sum_to_total(self):
        rng = np.random.default_rng(0)
        counts = op_counts_from_result(
            run_scoreboard(rng.integers(0, 256, size=300).tolist(), width=8)
        )
        assert counts.density == pytest.approx(
            counts.tr_density + counts.fr_density + counts.pr_density
        )

    @given(st.lists(st.integers(min_value=0, max_value=255), min_size=1, max_size=300))
    @settings(max_examples=40, deadline=None)
    def test_ordering_invariant(self, values):
        """Transitive ops never exceed bit-sparsity ops, which never exceed dense."""
        counts = op_counts_from_result(run_scoreboard(values, width=8))
        assert counts.transitive_ops <= counts.bit_sparsity_ops <= counts.dense_ops
        assert 0.0 <= counts.density <= 1.0
        assert counts.sparsity == pytest.approx(1.0 - counts.density)


class TestClassification:
    def test_paper_example_classes(self):
        result = run_scoreboard([14, 2, 5, 1, 15, 7, 2], width=4)
        classes = classify_nodes(result)
        assert classes.zr_rows == 0
        assert classes.pr_rows == 6       # distinct present nodes
        assert classes.fr_rows == 1       # the duplicate TransRow of value 2
        assert classes.tr_steps == 1      # relay node 6
        assert classes.outlier_rows == 0
        assert classes.total_transrows == 7

    def test_percentages_reference_transrow_count(self):
        result = run_scoreboard([0, 0, 3, 3], width=4)
        shares = classification_percentages(result)
        assert shares["ZR"] == pytest.approx(50.0)
        assert shares["FR"] == pytest.approx(25.0)
        assert shares["PR"] == pytest.approx(25.0)

    def test_outliers_reported_separately(self):
        result = run_scoreboard([255], width=8, max_distance=4)
        classes = classify_nodes(result)
        assert classes.outlier_rows == 1
        assert classes.pr_rows == 0
        assert classify_nodes(result).as_dict()[NodeType.OUTLIER] == 1

    @given(st.lists(st.integers(min_value=0, max_value=255), min_size=1, max_size=200))
    @settings(max_examples=40, deadline=None)
    def test_every_transrow_is_classified_once(self, values):
        result = run_scoreboard(values, width=8)
        classes = classify_nodes(result)
        accounted = classes.zr_rows + classes.fr_rows + classes.pr_rows + classes.outlier_rows
        assert accounted == len(values)
