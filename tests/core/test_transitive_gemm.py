"""Bit-exactness and op-count tests for the functional transitive GEMM engine."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import TransitiveGemmEngine, transitive_gemm
from repro.errors import SimulationError


class TestPaperFigure1:
    def test_four_row_binary_example(self):
        # Fig. 1: binary weight rows 1011, 1111, 0011, 0010 times input [6,-5,-2,4]
        weight = np.array([[1, 0, 1, 1], [1, 1, 1, 1], [0, 0, 1, 1], [0, 0, 1, 0]])
        activation = np.array([[6], [-5], [-2], [4]])
        report = TransitiveGemmEngine(transrow_bits=4).multiply(weight, activation, weight_bits=1)
        assert report.output.flatten().tolist() == [8, 3, 2, -2]

    def test_binary_example_needs_only_four_ops(self):
        # Transitive sparsity reduces the 10 bit-sparsity ops of Fig. 1 to 4.
        weight = np.array([[1, 0, 1, 1], [1, 1, 1, 1], [0, 0, 1, 1], [0, 0, 1, 0]])
        activation = np.array([[6], [-5], [-2], [4]])
        report = TransitiveGemmEngine(transrow_bits=4).multiply(weight, activation, weight_bits=1)
        assert report.op_counts.bit_sparsity_ops == 10
        assert report.op_counts.pr_ops + report.op_counts.tr_ops == 4
        assert report.op_counts.fr_ops == 0


class TestCorrectness:
    def test_int8_gemm_matches_numpy(self):
        rng = np.random.default_rng(0)
        weight = rng.integers(-128, 128, size=(16, 32), dtype=np.int64)
        act = rng.integers(-128, 128, size=(32, 8), dtype=np.int64)
        report = TransitiveGemmEngine(transrow_bits=8).multiply(weight, act, weight_bits=8)
        np.testing.assert_array_equal(report.output, weight @ act)

    def test_int4_weights_with_4bit_transrows(self):
        rng = np.random.default_rng(1)
        weight = rng.integers(-8, 8, size=(12, 20), dtype=np.int64)
        act = rng.integers(-128, 128, size=(20, 5), dtype=np.int64)
        report = TransitiveGemmEngine(transrow_bits=4).multiply(weight, act, weight_bits=4)
        np.testing.assert_array_equal(report.output, weight @ act)

    def test_k_not_multiple_of_transrow_width(self):
        rng = np.random.default_rng(2)
        weight = rng.integers(-8, 8, size=(6, 13), dtype=np.int64)
        act = rng.integers(-50, 50, size=(13, 3), dtype=np.int64)
        np.testing.assert_array_equal(
            transitive_gemm(weight, act, weight_bits=4, transrow_bits=8), weight @ act
        )

    def test_all_zero_weight(self):
        weight = np.zeros((4, 16), dtype=np.int64)
        act = np.ones((16, 4), dtype=np.int64)
        report = TransitiveGemmEngine(transrow_bits=8).multiply(weight, act, weight_bits=8)
        np.testing.assert_array_equal(report.output, np.zeros((4, 4)))
        assert report.op_counts.transitive_ops == 0
        assert report.op_counts.zr_fraction == 1.0

    def test_negative_weights_only(self):
        weight = np.full((3, 8), -1, dtype=np.int64)
        act = np.arange(8 * 2).reshape(8, 2).astype(np.int64)
        np.testing.assert_array_equal(
            transitive_gemm(weight, act, weight_bits=8), weight @ act
        )

    def test_shape_mismatch_rejected(self):
        with pytest.raises(SimulationError):
            TransitiveGemmEngine().multiply(
                np.zeros((2, 3), dtype=np.int64), np.zeros((4, 1), dtype=np.int64), 4
            )

    def test_non_2d_rejected(self):
        with pytest.raises(SimulationError):
            TransitiveGemmEngine().multiply(
                np.zeros(3, dtype=np.int64), np.zeros((3, 1), dtype=np.int64), 4
            )

    def test_invalid_transrow_width_rejected(self):
        with pytest.raises(SimulationError):
            TransitiveGemmEngine(transrow_bits=0)

    @given(
        st.integers(min_value=0, max_value=2**32 - 1),
        st.sampled_from([2, 4, 8]),
        st.sampled_from([4, 8]),
    )
    @settings(max_examples=25, deadline=None)
    def test_random_gemm_is_lossless(self, seed, weight_bits, transrow_bits):
        rng = np.random.default_rng(seed)
        n, k, m = rng.integers(1, 20, size=3)
        lo, hi = -(1 << (weight_bits - 1)), (1 << (weight_bits - 1)) - 1
        weight = rng.integers(lo, hi + 1, size=(n, k), dtype=np.int64)
        act = rng.integers(-128, 128, size=(k, m), dtype=np.int64)
        output = transitive_gemm(weight, act, weight_bits, transrow_bits=transrow_bits)
        np.testing.assert_array_equal(output, weight @ act)


class TestOpCounts:
    def test_density_floor_is_one_over_t(self):
        # With every 8-bit value present the density approaches 1/8 = 12.5 %.
        rng = np.random.default_rng(3)
        weight = rng.integers(-128, 128, size=(64, 8), dtype=np.int64)
        act = rng.integers(-8, 8, size=(8, 4), dtype=np.int64)
        report = TransitiveGemmEngine(transrow_bits=8).multiply(weight, act, weight_bits=8)
        assert report.density >= 1.0 / 8
        assert report.density < 0.25

    def test_transitive_never_exceeds_bit_sparsity(self):
        rng = np.random.default_rng(4)
        weight = rng.integers(-128, 128, size=(32, 32), dtype=np.int64)
        act = rng.integers(-8, 8, size=(32, 4), dtype=np.int64)
        report = TransitiveGemmEngine(transrow_bits=8).multiply(weight, act, weight_bits=8)
        assert report.op_counts.transitive_ops <= report.op_counts.bit_sparsity_ops
        assert report.op_counts.bit_sparsity_ops <= report.op_counts.dense_ops

    def test_chunk_results_collected_when_requested(self):
        rng = np.random.default_rng(5)
        weight = rng.integers(-8, 8, size=(4, 16), dtype=np.int64)
        act = rng.integers(-4, 4, size=(16, 2), dtype=np.int64)
        report = TransitiveGemmEngine(transrow_bits=8).multiply(
            weight, act, weight_bits=4, collect_chunks=True
        )
        assert len(report.chunk_results) == 2
