"""Property-style regression suite for the vectorized GEMM fast path.

For randomized shapes, TransRow widths, weight precisions and distance limits
the fast path must be **bit-identical** to both the scalar oracle and plain
``weight @ activation`` — outputs and reported operation counts alike.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import TransitiveGemmEngine
from repro.workloads.synthetic import outlier_weight_matrix
from repro.quant.quantizer import quantize


def _random_case(rng, weight_bits, max_dim=24):
    n, k, m = (int(x) for x in rng.integers(1, max_dim, size=3))
    lo = -(1 << (weight_bits - 1)) if weight_bits > 1 else 0
    hi = (1 << (weight_bits - 1)) - 1 if weight_bits > 1 else 1
    weight = rng.integers(lo, hi + 1, size=(n, k), dtype=np.int64)
    activation = rng.integers(-128, 128, size=(k, m), dtype=np.int64)
    return weight, activation


def _assert_paths_agree(weight, activation, weight_bits, transrow_bits, max_distance):
    fast = TransitiveGemmEngine(
        transrow_bits=transrow_bits, max_distance=max_distance, fast=True
    )
    scalar = TransitiveGemmEngine(
        transrow_bits=transrow_bits, max_distance=max_distance, fast=False
    )
    fast_report = fast.multiply(weight, activation, weight_bits)
    scalar_report = scalar.multiply(weight, activation, weight_bits)
    expected = weight.astype(np.int64) @ activation.astype(np.int64)
    np.testing.assert_array_equal(fast_report.output, expected)
    np.testing.assert_array_equal(scalar_report.output, expected)
    assert fast_report.op_counts == scalar_report.op_counts
    return fast_report


class TestRandomizedEquivalence:
    @given(
        st.integers(min_value=0, max_value=2**32 - 1),
        st.sampled_from([2, 4, 8]),          # TransRow width T
        st.integers(min_value=2, max_value=8),  # weight precision S
        st.sampled_from([1, 2, 4, 8]),       # max prefix distance
    )
    @settings(max_examples=40, deadline=None)
    def test_fast_equals_scalar_and_numpy(self, seed, transrow_bits, weight_bits,
                                          max_distance):
        rng = np.random.default_rng(seed)
        weight, activation = _random_case(rng, weight_bits)
        _assert_paths_agree(weight, activation, weight_bits, transrow_bits, max_distance)

    @given(st.integers(min_value=0, max_value=2**32 - 1))
    @settings(max_examples=10, deadline=None)
    def test_chunk_results_match_scalar(self, seed):
        rng = np.random.default_rng(seed)
        weight, activation = _random_case(rng, 4)
        fast = TransitiveGemmEngine(transrow_bits=4, fast=True)
        scalar = TransitiveGemmEngine(transrow_bits=4, fast=False)
        fr = fast.multiply(weight, activation, 4, collect_chunks=True)
        sr = scalar.multiply(weight, activation, 4, collect_chunks=True)
        assert len(fr.chunk_results) == len(sr.chunk_results)
        for cf, cs in zip(fr.chunk_results, sr.chunk_results):
            assert cf.counts == cs.counts
            assert cf.nodes == cs.nodes
            assert cf.outliers == cs.outliers


class TestEdgeCases:
    def test_empty_reduction_dimension(self):
        weight = np.zeros((3, 0), dtype=np.int64)
        activation = np.zeros((0, 4), dtype=np.int64)
        report = _assert_paths_agree(weight, activation, 4, 8, 4)
        assert report.op_counts.total_transrows == 0

    def test_empty_output_rows(self):
        weight = np.zeros((0, 9), dtype=np.int64)
        activation = np.ones((9, 4), dtype=np.int64)
        report = _assert_paths_agree(weight, activation, 4, 4, 4)
        assert report.output.shape == (0, 4)

    def test_all_zero_weight(self):
        weight = np.zeros((5, 17), dtype=np.int64)
        activation = np.arange(17 * 3, dtype=np.int64).reshape(17, 3)
        report = _assert_paths_agree(weight, activation, 8, 8, 4)
        assert report.op_counts.transitive_ops == 0
        assert report.op_counts.zr_fraction == 1.0

    def test_outlier_heavy_distance_one(self):
        # max_distance=1 turns every present node into an outlier: the fast
        # path must reproduce the raw popcount accumulation exactly.
        rng = np.random.default_rng(0)
        weight = rng.integers(-128, 128, size=(12, 32), dtype=np.int64)
        activation = rng.integers(-64, 64, size=(32, 6), dtype=np.int64)
        report = _assert_paths_agree(weight, activation, 8, 8, 1)
        assert report.op_counts.pr_ops == 0
        assert report.op_counts.tr_ops == 0
        assert report.op_counts.outlier_ops > 0

    def test_outlier_channel_weights(self):
        # Quantized Gaussian weights with heavy-tailed outlier channels (the
        # LLM-style distribution the paper evaluates on).
        quantized = quantize(outlier_weight_matrix(24, 40, seed=9), bits=8, axis=1)
        rng = np.random.default_rng(9)
        activation = rng.integers(-128, 128, size=(40, 5), dtype=np.int64)
        _assert_paths_agree(quantized.values, activation, 8, 8, 4)

    def test_single_bit_width_and_lanes(self):
        rng = np.random.default_rng(2)
        weight = rng.integers(0, 2, size=(6, 10), dtype=np.int64)
        activation = rng.integers(-9, 9, size=(10, 2), dtype=np.int64)
        _assert_paths_agree(weight, activation, 1, 2, 4)


class TestStaticScoreboardCache:
    def test_repeated_inference_hits_cache(self):
        rng = np.random.default_rng(4)
        weight = rng.integers(-8, 8, size=(32, 48), dtype=np.int64)
        engine = TransitiveGemmEngine(transrow_bits=8, fast=True)
        first = engine.multiply(weight, rng.integers(-5, 5, size=(48, 7)), 4)
        info = engine.scoreboard_cache_info()
        assert (info.hits, info.misses, info.entries) == (0, 1, 1)
        act = rng.integers(-5, 5, size=(48, 7))
        second = engine.multiply(weight, act, 4)
        info = engine.scoreboard_cache_info()
        assert (info.hits, info.misses) == (1, 1)
        np.testing.assert_array_equal(second.output, weight @ act)
        assert second.op_counts == first.op_counts

    def test_different_weights_miss_cache(self):
        rng = np.random.default_rng(6)
        engine = TransitiveGemmEngine(transrow_bits=8, fast=True)
        act = rng.integers(-5, 5, size=(16, 3))
        for _ in range(2):
            weight = rng.integers(-8, 8, size=(8, 16), dtype=np.int64)
            report = engine.multiply(weight, act, 4)
            np.testing.assert_array_equal(report.output, weight @ act)
        assert engine.scoreboard_cache_info().misses == 2

    def test_cache_eviction_respects_capacity(self):
        rng = np.random.default_rng(7)
        engine = TransitiveGemmEngine(
            transrow_bits=4, fast=True, scoreboard_cache_entries=2
        )
        act = rng.integers(-5, 5, size=(8, 2))
        for _ in range(4):
            weight = rng.integers(-8, 8, size=(4, 8), dtype=np.int64)
            engine.multiply(weight, act, 4)
        assert engine.scoreboard_cache_info().entries == 2

    def test_cache_disabled(self):
        rng = np.random.default_rng(8)
        engine = TransitiveGemmEngine(
            transrow_bits=4, fast=True, scoreboard_cache_entries=0
        )
        weight = rng.integers(-8, 8, size=(4, 8), dtype=np.int64)
        act = rng.integers(-5, 5, size=(8, 2))
        for _ in range(2):
            report = engine.multiply(weight, act, 4)
            np.testing.assert_array_equal(report.output, weight @ act)
        info = engine.scoreboard_cache_info()
        assert (info.hits, info.entries) == (0, 0)
