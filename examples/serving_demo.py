#!/usr/bin/env python
"""Serving demo: compile a LLaMA projection, fire concurrent model requests.

Compiles the Q projection of the LLaMA-7B Transformer block (INT4 weights)
into a :class:`~repro.serving.ModelPlan` — the weights are bit-sliced,
static-scoreboarded and lowered to a compiled kernel (the autoselected
backend is printed) once, offline — then spins up the thread-pool server and
fires concurrent model-level requests at it from client threads.  A
single-layer plan serves as an implicit one-stage pipeline, so
``server.submit(activation)`` needs no layer name.  The micro-batcher
coalesces concurrent activations into single engine passes; every output is
checked bit-exact against ``weight @ activation`` before the
:class:`~repro.serving.ServingReport` (including the per-stage pipeline
rows) is printed.

Usage::

    python examples/serving_demo.py
"""

import threading
import time

import numpy as np

from repro.serving import Server, SubmitOptions, compile_workload
from repro.workloads import llama_fc_gemms

MODEL = "llama1-7b"
LAYER = "q_proj"
NUM_REQUESTS = 48
MAX_BATCH = 16
NUM_WORKERS = 2


def main() -> None:
    workload = llama_fc_gemms(MODEL, weight_bits=4)
    print(f"Compiling {MODEL} layer {LAYER} (INT4 weights, static scoreboard)...")
    start = time.perf_counter()
    plan = compile_workload(workload, layer_names=[LAYER], seed=42)
    print(f"  compiled {len(plan)} layer in {time.perf_counter() - start:.2f}s "
          f"({plan.op_counts.total_transrows} TransRows scoreboarded once, "
          f"density {plan.op_counts.density:.1%})")
    stats = plan.compile_stats
    backends = ", ".join(stats.kernel_backends) if stats.kernel_backends else "none"
    print(f"  lowered to compiled kernels via: {backends} "
          f"({stats.lowering_s * 1e3:.1f} ms lowering, "
          f"{stats.kernel_bytes / 1024:.1f} KiB)\n")

    rng = np.random.default_rng(0)
    shape = plan.layer(LAYER).shape
    activations = [
        rng.integers(-128, 128, size=(shape.k, 1), dtype=np.int64)
        for _ in range(NUM_REQUESTS)
    ]
    outputs = [None] * NUM_REQUESTS

    # Generous per-request deadline: requests that cannot be served in time
    # are expired rather than left to queue forever.
    options = SubmitOptions(deadline_s=600.0)

    print(f"Serving {NUM_REQUESTS} concurrent single-token model requests "
          f"({NUM_WORKERS} workers, max_batch={MAX_BATCH})...")
    with Server(plan, num_workers=NUM_WORKERS, max_batch=MAX_BATCH,
                max_pending=NUM_REQUESTS) as server:

        def client(index: int) -> None:
            request = server.submit(activations[index], options=options)
            outputs[index] = request.result(timeout=600.0)

        threads = [
            threading.Thread(target=client, args=(index,))
            for index in range(NUM_REQUESTS)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()

    weight = plan.layer(LAYER).weight
    for index in range(NUM_REQUESTS):
        expected = weight @ activations[index]
        assert np.array_equal(outputs[index], expected), "serving must be bit-exact"
    print("  every output bit-identical to weight @ activation\n")

    print(server.report().render())


if __name__ == "__main__":
    main()
