#!/usr/bin/env python
"""ResNet-18 on the TransArray with mixed 4-/8-bit quantization (Fig. 14).

Lowers every ResNet-18 convolution to GEMM with im2col, quantizes weights to
4 bits (8 bits for the first conv and the classifier, as in the paper), and
simulates each layer on BitFusion, ANT and the TransArray.

Usage::

    python examples/resnet18_inference.py
"""

from repro.analysis import format_table, resnet_comparison
from repro.analysis.comparison import geomean_speedup
from repro.workloads import resnet18_gemms


def main() -> None:
    workload = resnet18_gemms(weight_bits=4)
    total_macs = workload.total_macs
    print(f"ResNet-18 lowered to {len(workload.gemms)} GEMMs "
          f"({total_macs / 1e9:.2f} GMACs total)\n")

    rows = resnet_comparison(samples_per_gemm=6)
    table = [
        (r.workload, r.accelerator, r.cycles, r.speedup)
        for r in sorted(rows, key=lambda r: (r.workload, r.accelerator))
    ]
    print(format_table(["layer", "accelerator", "cycles", "speedup vs BitFusion"], table))

    ta = geomean_speedup(rows, "transarray")
    ant = geomean_speedup(rows, "ant")
    print(f"\nGeomean over layers: TransArray={ta:.2f}x, ANT={ant:.2f}x over BitFusion "
          f"(paper totals: 4.26x and ~1.9x)")


if __name__ == "__main__":
    main()
