#!/usr/bin/env python
"""Attention layers with on-the-fly (dynamic-scoreboard) quantization (Fig. 12).

Attention is the workload that breaks offline-preprocessing accelerators: the
Q/K/V tensors only exist at run time.  This example does two things:

1. Functionally: runs a small single-head attention score computation
   (``softmax(Q K^T / sqrt(d)) V``) where the integer GEMMs go through the
   transitive-sparsity engine, and checks the integer parts are bit-exact.
2. Architecturally: simulates the full attention GEMMs of LLaMA models on the
   TransArray (8-bit, dynamic scoreboard), ANT (8-bit) and BitFusion (16-bit)
   and prints the speedups of Fig. 12.

Usage::

    python examples/attention_inference.py [sequence_length]
"""

import sys

import numpy as np

from repro.analysis import attention_comparison, format_table
from repro.analysis.comparison import geomean_speedup
from repro.core import TransitiveGemmEngine
from repro.transarray.vpu import VectorProcessingUnit


def functional_attention_demo(seq: int = 32, head_dim: int = 16) -> None:
    """One attention head where every integer GEMM runs transitively."""
    rng = np.random.default_rng(0)
    query = rng.integers(-128, 128, size=(seq, head_dim), dtype=np.int64)
    key = rng.integers(-128, 128, size=(seq, head_dim), dtype=np.int64)
    value = rng.integers(-128, 128, size=(seq, head_dim), dtype=np.int64)

    engine = TransitiveGemmEngine(transrow_bits=8)
    vpu = VectorProcessingUnit()

    # Q @ K^T through transitive sparsity (K acts as the weight operand).
    scores_report = engine.multiply(query, key.T, weight_bits=8)
    assert (scores_report.output == query @ key.T).all()
    probabilities = vpu.softmax(scores_report.output / np.sqrt(head_dim), axis=-1)

    # P @ V: requantize the probabilities to INT8 and run transitively again.
    prob_int8 = np.clip(np.round(probabilities * 127), -128, 127).astype(np.int64)
    context_report = engine.multiply(prob_int8, value, weight_bits=8)
    assert (context_report.output == prob_int8 @ value).all()

    print("Functional single-head attention (integer GEMMs via transitive sparsity):")
    print(f"  QK^T density : {scores_report.density:.1%}")
    print(f"  PV   density : {context_report.density:.1%}")
    print(f"  both GEMMs bit-exact against numpy\n")


def main() -> None:
    sequence_length = int(sys.argv[1]) if len(sys.argv) > 1 else 2048
    functional_attention_demo()

    print(f"Simulating attention layers at sequence length {sequence_length}...\n")
    rows = attention_comparison(sequence_length=sequence_length, samples_per_gemm=6)
    table = [
        (r.workload, r.accelerator, r.cycles, r.speedup)
        for r in sorted(rows, key=lambda r: (r.workload, r.accelerator))
    ]
    print(format_table(["model", "accelerator", "cycles", "speedup vs BF-16b"], table))
    ta = geomean_speedup(rows, "transarray-8bit")
    ant = geomean_speedup(rows, "ant-8bit")
    print(f"\nGeomean speedup: TransArray-8bit={ta:.2f}x, ANT-8bit={ant:.2f}x "
          f"(paper: 3.97x and ~2.6x; TA/ANT ~1.54x)")


if __name__ == "__main__":
    main()
