#!/usr/bin/env python
"""Design-space exploration: why the paper picks 8-bit TranSparsity (Fig. 9).

Sweeps the TransRow width and tiling row size on a uniform random 0/1 matrix
and prints the density curves and node-type shares that justify the final
hardware configuration (T = 8, 256 TransRows per sub-tile).

Usage::

    python examples/design_space_exploration.py [matrix_size]
"""

import sys

from repro.analysis import (
    density_vs_row_size,
    format_table,
    node_type_vs_bitwidth,
    scoreboard_density_study,
)


def main() -> None:
    matrix_size = int(sys.argv[1]) if len(sys.argv) > 1 else 512

    print(f"Sweeping TranSparsity on a {matrix_size}x{matrix_size} random 0/1 matrix...\n")
    points = density_vs_row_size(
        bit_widths=(2, 4, 6, 8, 10, 12),
        row_sizes=(16, 64, 256, 512),
        matrix_size=matrix_size,
        max_tiles=4,
    )
    print("Fig 9(a): overall density (%) — lower is better")
    print(format_table(
        ["T (bits)", "row size", "density %"],
        [(p.bit_width, p.row_size, 100.0 * p.density) for p in points],
    ))

    best = min(points, key=lambda p: p.density)
    print(f"\nBest density {best.density:.1%} at T={best.bit_width}, "
          f"row size {best.row_size} — the paper's Pareto point is T=8 at >=256 rows.\n")

    shares = node_type_vs_bitwidth(bit_widths=(2, 4, 8, 12), row_size=256,
                                   matrix_size=matrix_size)
    print("Fig 9(b): node-type shares (%) at row size 256")
    print(format_table(
        ["T (bits)", "ZR", "TR", "FR", "PR"],
        [(w, s["ZR"], s["TR"], s["FR"], s["PR"]) for w, s in sorted(shares.items())],
    ))

    print("\nFig 13 preview: static vs dynamic scoreboard density (%)")
    study = scoreboard_density_study(row_sizes=(64, 256), matrix_rows=512,
                                     matrix_cols=64, max_tiles=4)
    print(format_table(
        ["data", "scoreboard", "row size", "density %"],
        [(p.data, p.mode, p.row_size, 100.0 * p.density) for p in study],
    ))


if __name__ == "__main__":
    main()
