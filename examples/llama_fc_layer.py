#!/usr/bin/env python
"""LLaMA fully-connected layers on the TransArray vs the five baselines (Fig. 10).

Simulates the FC GEMMs of one Transformer block (prefill 2048) for a chosen
LLaMA model on every accelerator and prints cycles, speedup and energy
efficiency normalised to Olive — the comparison behind the paper's headline
7.46x / 3.97x speedup numbers.

Usage::

    python examples/llama_fc_layer.py [model] [sequence_length]

``model`` defaults to ``llama1-7b``; see ``repro.workloads.LLAMA_MODELS`` for
the available names.
"""

import sys

from repro.analysis import fc_layer_comparison, format_table
from repro.analysis.comparison import geomean_speedup
from repro.workloads import LLAMA_MODELS


def main() -> None:
    model = sys.argv[1] if len(sys.argv) > 1 else "llama1-7b"
    sequence_length = int(sys.argv[2]) if len(sys.argv) > 2 else 2048
    if model not in LLAMA_MODELS:
        raise SystemExit(f"unknown model '{model}'; choose from {sorted(LLAMA_MODELS)}")

    print(f"Simulating the FC layers of one {model} block "
          f"(prefill sequence length {sequence_length})...\n")
    rows = fc_layer_comparison(
        models=[model], sequence_length=sequence_length, samples_per_gemm=8
    )
    table = [
        (r.accelerator, r.cycles, r.speedup, r.energy_efficiency)
        for r in sorted(rows, key=lambda r: r.cycles, reverse=True)
    ]
    print(format_table(
        ["accelerator", "cycles", "speedup vs Olive", "energy eff. vs Olive"], table
    ))

    ta4 = geomean_speedup(rows, "transarray-4bit")
    ta8 = geomean_speedup(rows, "transarray-8bit")
    print(f"\nTransArray-4bit speedup over Olive : {ta4:.2f}x (paper: ~7.46x)")
    print(f"TransArray-8bit speedup over Olive : {ta8:.2f}x (paper: ~3.75x)")


if __name__ == "__main__":
    main()
