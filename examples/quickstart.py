#!/usr/bin/env python
"""Quickstart: multiplication-free GEMM through transitive sparsity.

Runs a small quantized GEMM through the functional TransitiveGemmEngine,
verifies it is bit-exact against numpy, and prints the operation counts that
make the Transitive Array fast: the density (fraction of bit-serial dense work
remaining) and the op-count speedups over dense and bit-sparsity execution.

Usage::

    python examples/quickstart.py

Docs index: ``docs/performance.md`` covers the vectorized fast path and the
static-scoreboard cache; ``docs/serving.md`` covers the request-batching
serving runtime (see ``examples/serving_demo.py``).
"""

import numpy as np

from repro import TransitiveGemmEngine
from repro.analysis import format_table
from repro.scoreboard import run_scoreboard


def main() -> None:
    rng = np.random.default_rng(0)
    weight = rng.integers(-128, 128, size=(64, 64), dtype=np.int64)   # INT8 weights
    activation = rng.integers(-128, 128, size=(64, 32), dtype=np.int64)  # INT8 inputs

    engine = TransitiveGemmEngine(transrow_bits=8)
    report = engine.multiply(weight, activation, weight_bits=8)

    assert (report.output == weight @ activation).all(), "transitive GEMM must be lossless"
    counts = report.op_counts

    print("Transitive GEMM is bit-exact against numpy.\n")
    print(format_table(
        ["metric", "value"],
        [
            ("TransRows processed", counts.total_transrows),
            ("dense (bit-serial) adds", counts.dense_ops),
            ("bit-sparsity adds", counts.bit_sparsity_ops),
            ("transitive-sparsity adds", counts.transitive_ops),
            ("density", f"{counts.density:.1%}"),
            ("speedup vs dense", f"{counts.speedup_over_dense():.2f}x"),
            ("speedup vs bit sparsity", f"{counts.speedup_over_bit_sparsity():.2f}x"),
        ],
    ))

    # Serving mode: the engine rides the vectorized fast path by default and
    # caches the weight's scoreboard, so a second inference over new
    # activations skips bit-slicing and scoreboarding entirely.
    second = engine.multiply(
        weight, rng.integers(-128, 128, size=(64, 32), dtype=np.int64), weight_bits=8
    )
    assert second.op_counts == counts, "same weights, same operation counts"
    cache = engine.scoreboard_cache_info()
    print(f"\nStatic-scoreboard cache after a second inference: "
          f"{cache.hits} hit(s), {cache.misses} miss(es) "
          f"(fast path; set fast=False for the scalar oracle)")

    # Peek at the scoreboard of one 8-bit sub-tile: the balanced forest that
    # makes the reuse parallelisable across 8 lanes.
    values = rng.integers(0, 256, size=256).tolist()
    result = run_scoreboard(values, width=8)
    print("\nOne sub-tile's balanced forest:")
    print(f"  executed nodes : {len(result.nodes)} "
          f"({len(result.relay_nodes)} relay-only)")
    print(f"  outliers       : {len(result.outliers)}")
    print(f"  lane workloads : {result.forest.lane_workloads}")
    print(f"  imbalance      : {result.forest.imbalance:.3f} (1.0 = perfectly balanced)")


if __name__ == "__main__":
    main()
