#!/usr/bin/env python
"""Whole-model serving demo: pipeline a LLaMA block through the server.

Compiles one full LLaMA Transformer block — the five chained GEMM stages of
:func:`~repro.workloads.llama_block_gemms` — with ``graph="chain"`` and
per-layer mixed precision (the attention path at INT4, the MLP pair at
INT8), then serves it three ways:

* a batch of concurrent **model requests**, each flowing through all five
  pipeline stages while later arrivals occupy earlier stages;
* a **decode stream** (``stream=N``): the block's output token feeds back
  as the next step's input, N autoregressive steps on one request handle;
* a sequential ``plan.run_model`` **reference pass**, to show every served
  output is bit-identical to running the stages one by one.

The printed :class:`~repro.serving.ServingReport` includes per-stage rows:
requests, micro-batches, compute time and occupancy (stage compute seconds
per wall second — the overlap measure; the sum across stages approaches the
worker count when the pipeline keeps every worker busy).

A small model configuration keeps compile time in seconds; pass a real name
such as ``llama1-7b`` for the full-size block.

Usage::

    python examples/llama_block_serving.py
"""

import threading
import time

import numpy as np

from repro.serving import Server, SubmitOptions, compile_workload
from repro.workloads import LlamaConfig, llama_block_gemms

#: Small stand-in block (hidden 96, intermediate 160) so the demo compiles fast.
CONFIG = LlamaConfig("demo-llama", hidden_size=96, intermediate_size=160,
                     num_attention_heads=4, num_key_value_heads=4, num_layers=2)
QUANT_SCHEMES = {
    "qkv_proj": "transarray-int4",
    "attn_score": "transarray-int4",
    "o_proj": "transarray-int4",
    "gate_proj": "transarray-int8",
    "down_proj": "transarray-int8",
}
NUM_REQUESTS = 24
DECODE_STEPS = 6
MAX_BATCH = 8
NUM_WORKERS = 2


def main() -> None:
    workload = llama_block_gemms(CONFIG.name, config=CONFIG, weight_bits=4)
    print(f"Compiling the {CONFIG.name} block as a chained pipeline "
          f"({len(workload.gemms)} stages, per-layer mixed precision)...")
    start = time.perf_counter()
    plan = compile_workload(workload, seed=7, graph="chain",
                            quant_schemes=QUANT_SCHEMES)
    stats = plan.compile_stats
    print(f"  compiled in {time.perf_counter() - start:.2f}s; {plan.graph.describe()}")
    bits = ", ".join(f"{layer}={stats.per_layer_bits[layer]}b"
                     for layer in plan.layer_names())
    print(f"  per-layer weight bits: {bits}")
    print(f"  streamable: {plan.streamable} "
          f"(input dim {plan.input_dim}, output dim {plan.output_dim})\n")

    rng = np.random.default_rng(3)
    activations = [
        rng.integers(-32, 32, size=(plan.input_dim, 1), dtype=np.int64)
        for _ in range(NUM_REQUESTS)
    ]
    outputs = [None] * NUM_REQUESTS
    options = SubmitOptions(deadline_s=600.0)

    print(f"Serving {NUM_REQUESTS} concurrent model requests through the "
          f"{len(plan.graph)}-stage pipeline ({NUM_WORKERS} workers)...")
    with Server(plan, num_workers=NUM_WORKERS, max_batch=MAX_BATCH,
                max_pending=NUM_REQUESTS) as server:

        def client(index: int) -> None:
            request = server.submit(activations[index], options=options)
            outputs[index] = request.result(timeout=600.0)

        threads = [
            threading.Thread(target=client, args=(index,))
            for index in range(NUM_REQUESTS)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()

        print(f"Streaming {DECODE_STEPS} autoregressive decode steps on one "
              f"request handle...")
        stream = server.submit(activations[0], stream=DECODE_STEPS)
        step_outputs = stream.outputs(timeout=600.0)

    for index in range(NUM_REQUESTS):
        expected = plan.run_model(activations[index])
        assert np.array_equal(outputs[index], expected), \
            "pipelined serving must match the sequential reference bit-exactly"

    token = activations[0]
    for step, produced in enumerate(step_outputs):
        token = plan.run_model(token)
        assert np.array_equal(produced, token), \
            f"decode step {step} must match the sequential reference"
    print("  every pipelined and streamed output bit-identical to the "
          "sequential per-layer reference\n")

    print(server.report().render())


if __name__ == "__main__":
    main()
